// Package mapreduce models the MapReduce workload: one node of a Hadoop
// cluster running Mahout's naive-Bayes text classification over
// Wikipedia-like documents (Section 3.2: Hadoop 0.20.2, Mahout 0.4,
// 4.5GB of pages, one map task per core with a 2GB heap).
//
// Each thread is a map task: it reads its input split through the page
// cache, tokenises the text with long sequential scans (the access
// pattern that makes MapReduce the one scale-out workload that benefits
// from the hardware prefetchers, Figure 5), looks terms up in a
// per-task hash table of model weights, accumulates class scores, and
// periodically spills sorted intermediate output through the file
// system. Map tasks share nothing, matching the paper's observation
// that all tasks are architecturally independent.
package mapreduce

import (
	"cloudsuite/internal/addrspace"
	"cloudsuite/internal/oskern"
	"cloudsuite/internal/rng"
	"cloudsuite/internal/sim/checkpoint"
	"cloudsuite/internal/trace"
	"cloudsuite/internal/workloads"
)

// Config scales the workload.
type Config struct {
	// SplitBytes is the per-task input split size.
	SplitBytes uint64
	// VocabTerms is the model vocabulary (weights table entries).
	VocabTerms uint64
	// Labels is the number of classification labels (country tags).
	Labels int
	// DocBytes is the mean document length.
	DocBytes int
	// FrameworkInsts is the per-document Hadoop/JVM overhead.
	FrameworkInsts int
}

// DefaultConfig scales the 4.5GB dataset down to a 48MB split per task
// with a 1M-term model (~24MB of weights per task).
func DefaultConfig() Config {
	return Config{
		SplitBytes: 48 << 20, VocabTerms: 512 << 10, Labels: 64,
		DocBytes: 1200, FrameworkInsts: 2600,
	}
}

// Job is the MapReduce workload instance.
type Job struct {
	cfg  Config
	kern *oskern.Kernel
	heap *addrspace.Heap
	bank *workloads.CodeBank

	fnRecordRead *trace.Func
	fnTokenize   *trace.Func
	fnLookup     *trace.Func
	fnScore      *trace.Func
	fnEmit       *trace.Func
	fnSpill      *trace.Func
	fnCombine    *trace.Func
}

// New builds the job.
func New(cfg Config) *Job {
	if cfg.SplitBytes == 0 {
		cfg = DefaultConfig()
	}
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	j := &Job{cfg: cfg, kern: oskern.New(oskern.DefaultConfig()), heap: addrspace.NewUserHeap()}
	j.bank = workloads.NewCodeBank(code, "hadoop", 140, 850)
	j.fnRecordRead = code.Func("record_reader", 500)
	j.fnTokenize = code.Func("tokenize", 640)
	j.fnLookup = code.Func("weight_lookup", 300)
	j.fnScore = code.Func("bayes_score", 380)
	j.fnEmit = code.Func("emit_kv", 260)
	j.fnSpill = code.Func("sort_spill", 700)
	j.fnCombine = code.Func("combiner", 520)
	return j
}

// Name implements workloads.Workload.
func (j *Job) Name() string { return "MapReduce" }

// Class implements workloads.Workload.
func (j *Job) Class() workloads.Class { return workloads.ScaleOut }

// Start implements workloads.Workload. Each thread is one map task with
// private input buffer, weights table, and spill buffer.
func (j *Job) Start(n int, seed int64) []*trace.StepGen {
	gens := make([]*trace.StepGen, n)
	for i := 0; i < n; i++ {
		cfg := workloads.EmitterConfigFor(seed+int64(i)*104729, 0.08)
		gens[i] = trace.NewStepGen(cfg, j.newTask(i, seed+int64(i)))
	}
	return gens
}

// SaveShared serializes the job's shared mutable state. Map tasks share
// nothing; only the kernel and heap cursors move.
func (j *Job) SaveShared(w *checkpoint.Writer) {
	w.Tag("mapreduce.shared")
	j.kern.SaveState(w)
	j.heap.SaveState(w)
}

// LoadShared restores state written by SaveShared.
func (j *Job) LoadShared(rd *checkpoint.Reader) {
	rd.Expect("mapreduce.shared")
	j.kern.LoadState(rd)
	j.heap.LoadState(rd)
}

type task struct {
	input   uint64          //simlint:ok checkpointcov streaming input buffer (split-sized), construction-time address
	weights addrspace.Array //simlint:ok checkpointcov construction-time allocation geometry
	counts  addrspace.Array //simlint:ok checkpointcov construction-time allocation geometry
	scores  addrspace.Array //simlint:ok checkpointcov construction-time allocation geometry
	spill   uint64          //simlint:ok checkpointcov construction-time address

	j     *Job            //simlint:ok checkpointcov shared job, checkpointed via SaveShared
	tid   int             //simlint:ok checkpointcov construction-time identity
	rnd   *rng.Rand       // document lengths
	zipf  *workloads.Zipf //simlint:ok checkpointcov immutable params; draw state lives in rnd
	stack uint64          //simlint:ok checkpointcov construction-time address

	off      uint64
	spillPos uint64
	docs     uint64
}

func (j *Job) newTask(tid int, seed int64) *task {
	r := rng.New(seed)
	return &task{
		input:   j.heap.AllocLines(j.cfg.SplitBytes),
		weights: addrspace.NewArray(j.heap, j.cfg.VocabTerms, 24),
		counts:  addrspace.NewArray(j.heap, j.cfg.VocabTerms/4, 16),
		scores:  addrspace.NewArray(j.heap, uint64(j.cfg.Labels), 8),
		spill:   j.heap.AllocLines(4 << 20),
		j:       j, tid: tid, rnd: r,
		zipf:  workloads.NewZipf(r, 1.05, j.cfg.VocabTerms), // term frequencies
		stack: workloads.StackOf(tid),
	}
}

// SaveState serializes the task's resumable state.
func (t *task) SaveState(w *checkpoint.Writer) {
	w.Tag("mapreduce.task")
	t.rnd.SaveState(w)
	w.U64(t.off)
	w.U64(t.spillPos)
	w.U64(t.docs)
}

// LoadState restores state written by SaveState.
func (t *task) LoadState(rd *checkpoint.Reader) {
	rd.Expect("mapreduce.task")
	t.rnd.LoadState(rd)
	t.off = rd.U64()
	t.spillPos = rd.U64()
	t.docs = rd.U64()
}

// Step processes one document.
func (t *task) Step(e *trace.Emitter) bool {
	j, tid, rnd, zipf, stack := t.j, t.tid, t.rnd, t.zipf, t.stack
	off, spillPos, docs := t.off, t.spillPos, int(t.docs)

	{
		docBytes := j.cfg.DocBytes/2 + rnd.Intn(j.cfg.DocBytes)
		if off+uint64(docBytes) >= j.cfg.SplitBytes {
			off = 0
		}
		// Read the next document from the split through the page cache.
		e.InFunc(j.fnRecordRead, func() {
			workloads.GenericWork(e, 120, stack, 3)
		})
		j.kern.FileRead(e, uint64(tid), off, t.input+off, docBytes)
		j.bank.Exec(e, uint64(docs)*2654435761+uint64(tid), 16, j.cfg.FrameworkInsts, stack, 3)

		// Tokenise: a long sequential scan over the document text.
		nTokens := docBytes / 40
		e.InFunc(j.fnTokenize, func() {
			var v trace.Val = trace.NoVal
			for b := uint64(0); b < uint64(docBytes); b += 64 {
				ld := e.Load(t.input+off+b, 64, trace.NoVal, false)
				// Character scanning, UTF-8 decode, token boundary checks.
				v = e.ALUChain(8, ld)
				e.ALUIndep(10)
				v = e.ALU(v, ld)
				e.Branch(b%128 == 0, v)
			}
		})

		// Per token: weight lookup (random access over the model) and
		// Bayes accumulation (FP).
		e.InFunc(j.fnScore, func() {
			var acc trace.Val = trace.NoVal
			for k := 0; k < nTokens; k++ {
				term := zipf.Next() % j.cfg.VocabTerms
				e.InFunc(j.fnLookup, func() {
					w := e.Load(t.weights.At(term), 8, trace.NoVal, false)
					h := e.Load(t.counts.At(term%t.counts.Len), 8, trace.NoVal, false)
					e.Store(t.counts.At(term%t.counts.Len), 8, h, trace.NoVal)
					acc = e.FP(acc, w)
					workloads.GenericWork(e, 280, t.spill, 3)
				})
				if k%8 == 0 {
					lbl := uint64(k) % uint64(j.cfg.Labels)
					sv := e.Load(t.scores.At(lbl), 8, acc, false)
					e.Store(t.scores.At(lbl), 8, sv, trace.NoVal)
				}
			}
		})

		// Emit the classification result.
		e.InFunc(j.fnEmit, func() {
			var best trace.Val = trace.NoVal
			for l := 0; l < j.cfg.Labels; l++ {
				sv := e.Load(t.scores.At(uint64(l)), 8, trace.NoVal, false)
				best = e.FP(best, sv)
			}
			e.Store(t.spill+spillPos%(4<<20), 64, best, trace.NoVal)
		})
		spillPos += 64

		docs++
		off += uint64(docBytes)

		// Periodic sort-and-spill of the intermediate buffer.
		if docs%64 == 0 {
			e.InFunc(j.fnSpill, func() {
				// Merge-style pass: sequential reads and writes over the
				// spill buffer (prefetcher-friendly).
				var v trace.Val = trace.NoVal
				for b := uint64(0); b < 1<<18; b += 64 {
					ld := e.Load(t.spill+b, 64, trace.NoVal, false)
					v = e.ALUChain(2, ld)
					e.Store(t.spill+(b+2<<20)%(4<<20), 64, v, trace.NoVal)
				}
			})
			e.InFunc(j.fnCombine, func() {
				workloads.GenericWork(e, 600, stack, 2)
			})
			j.kern.FileRead(e, uint64(tid)+100, spillPos, t.spill, 4096)
			j.kern.SchedTick(e, tid)
		}
	}

	t.off, t.spillPos, t.docs = off, spillPos, uint64(docs)
	return true
}
