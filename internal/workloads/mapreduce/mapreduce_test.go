package mapreduce

import (
	"testing"

	"cloudsuite/internal/trace"
)

func smallConfig() Config {
	return Config{SplitBytes: 1 << 20, VocabTerms: 4096, Labels: 16, DocBytes: 600, FrameworkInsts: 400}
}

func drain(t *testing.T, g *trace.StepGen, n int) []trace.Inst {
	t.Helper()
	out := make([]trace.Inst, n)
	got := 0
	for got < n {
		k := g.Next(out[got:])
		if k == 0 {
			break
		}
		got += k
	}
	return out[:got]
}

func TestMetadata(t *testing.T) {
	j := New(smallConfig())
	if j.Name() != "MapReduce" {
		t.Errorf("name = %q", j.Name())
	}
}

func TestMapTasksAreIndependent(t *testing.T) {
	j := New(smallConfig())
	gens := j.Start(2, 11)
	defer func() {
		for _, g := range gens {
			g.Close()
		}
	}()
	// Collect the user-mode data addresses of each task; the paper notes
	// map tasks share nothing architecturally.
	sets := make([]map[uint64]bool, 2)
	for i, g := range gens {
		sets[i] = map[uint64]bool{}
		for _, in := range drain(t, g, 60000) {
			if !in.Kernel && in.Op.IsMem() {
				sets[i][in.Addr>>6] = true
			}
		}
	}
	shared := 0
	for l := range sets[0] {
		if sets[1][l] {
			shared++
		}
	}
	// Thread stacks aside, overlap must be negligible.
	if frac := float64(shared) / float64(len(sets[0])); frac > 0.02 {
		t.Fatalf("map tasks share %.1f%% of their data lines", 100*frac)
	}
}

func TestTokenizeScansSequentially(t *testing.T) {
	j := New(smallConfig())
	gens := j.Start(1, 4)
	defer gens[0].Close()
	insts := drain(t, gens[0], 100000)
	// Measure sequentiality over user loads: MapReduce is the scan-heavy
	// scale-out workload (it alone benefits from prefetchers, Fig. 5).
	var last uint64
	seq, total := 0, 0
	for _, in := range insts {
		if in.Kernel || in.Op != trace.OpLoad {
			continue
		}
		if last != 0 {
			d := int64(in.Addr) - int64(last)
			if d >= 0 && d <= 64 {
				seq++
			}
			total++
		}
		last = in.Addr
	}
	if total == 0 || float64(seq)/float64(total) < 0.25 {
		t.Fatalf("tokenizer scan not sequential: %d/%d", seq, total)
	}
}

func TestUsesFileSystemThroughOS(t *testing.T) {
	j := New(smallConfig())
	gens := j.Start(1, 4)
	defer gens[0].Close()
	kernel := 0
	insts := drain(t, gens[0], 60000)
	for _, in := range insts {
		if in.Kernel {
			kernel++
		}
	}
	if kernel == 0 {
		t.Fatal("map task never entered the OS (record reader uses the file system)")
	}
	// But the OS share must be small: the task is compute-dominated.
	if frac := float64(kernel) / float64(len(insts)); frac > 0.30 {
		t.Fatalf("OS share %.2f too high for MapReduce", frac)
	}
}

func TestFPScoringPresent(t *testing.T) {
	j := New(smallConfig())
	gens := j.Start(1, 4)
	defer gens[0].Close()
	fp := 0
	for _, in := range drain(t, gens[0], 60000) {
		if in.Op == trace.OpFP {
			fp++
		}
	}
	if fp == 0 {
		t.Fatal("naive-Bayes scoring emitted no floating-point work")
	}
}
