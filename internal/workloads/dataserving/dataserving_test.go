package dataserving

import (
	"testing"
	"time"

	"cloudsuite/internal/trace"
)

func smallConfig() Config {
	return Config{Records: 4096, RecordBytes: 1024, ReadFrac: 0.95, Runs: 4, FrameworkInsts: 800}
}

func drain(t *testing.T, g *trace.StepGen, n int) []trace.Inst {
	t.Helper()
	out := make([]trace.Inst, n)
	got := 0
	for got < n {
		k := g.Next(out[got:])
		if k == 0 {
			break
		}
		got += k
	}
	return out[:got]
}

func TestMetadata(t *testing.T) {
	s := New(smallConfig())
	if s.Name() != "Data Serving" {
		t.Errorf("name = %q", s.Name())
	}
	if s.DatasetBytes() != 4096*1024 {
		t.Errorf("dataset = %d", s.DatasetBytes())
	}
}

func TestStartProducesStreams(t *testing.T) {
	s := New(smallConfig())
	gens := s.Start(2, 7)
	if len(gens) != 2 {
		t.Fatalf("gens = %d", len(gens))
	}
	defer func() {
		for _, g := range gens {
			g.Close()
		}
	}()
	for i, g := range gens {
		insts := drain(t, g, 5000)
		if len(insts) != 5000 {
			t.Fatalf("thread %d produced %d insts", i, len(insts))
		}
	}
}

func TestRequestLoopTouchesDatasetAndKernel(t *testing.T) {
	s := New(smallConfig())
	gens := s.Start(1, 3)
	defer gens[0].Close()
	insts := drain(t, gens[0], 80000)

	recLo := s.runs[0].recs.Base
	recHi := s.runs[len(s.runs)-1].recs.Base + s.runs[len(s.runs)-1].recs.Bytes()
	var recordLoads, kernelInsts, stores, chases int
	for _, in := range insts {
		if in.Kernel {
			kernelInsts++
		}
		if in.Op == trace.OpLoad && in.Addr >= recLo && in.Addr < recHi {
			recordLoads++
		}
		if in.Op == trace.OpStore {
			stores++
		}
		if in.AcquiresDep {
			chases++
		}
	}
	if recordLoads == 0 {
		t.Error("reads never touched record payloads")
	}
	if kernelInsts == 0 {
		t.Error("no OS activity (network path) emitted")
	}
	if stores == 0 {
		t.Error("no stores (writes, GC marks, commit log)")
	}
	if chases == 0 {
		t.Error("no pointer chasing (skiplist, index)")
	}
}

func TestWritePathExercised(t *testing.T) {
	cfg := smallConfig()
	cfg.ReadFrac = 0 // all writes
	s := New(cfg)
	gens := s.Start(1, 9)
	defer gens[0].Close()
	insts := drain(t, gens[0], 60000)
	logLo, logHi := s.logAddr, s.logAddr+(8<<20)
	logStores := 0
	for _, in := range insts {
		if in.Op == trace.OpStore && in.Addr >= logLo && in.Addr < logHi {
			logStores++
		}
	}
	if logStores == 0 {
		t.Fatal("write-only mix never appended to the commit log")
	}
	if s.memCount == 0 && s.memLevel == 1 {
		t.Fatal("memtable never grew")
	}
}

func TestGCQuantumMarksSharedHeaders(t *testing.T) {
	s := New(smallConfig())
	gens := s.Start(2, 5)
	defer func() {
		for _, g := range gens {
			g.Close()
		}
	}()
	hdrLo, hdrHi := s.headers.Base, s.headers.Base+s.headers.Bytes()
	found := 0
	// The GC quantum runs every ~48 requests; drain enough to cover it.
	for _, g := range gens {
		for _, in := range drain(t, g, 800000) {
			if in.Op == trace.OpStore && in.Addr >= hdrLo && in.Addr < hdrHi {
				found++
			}
		}
	}
	if found == 0 {
		t.Fatal("GC quanta never marked shared headers")
	}
}

func TestZipfSkewVisitsHotKeys(t *testing.T) {
	s := New(smallConfig())
	gens := s.Start(1, 1)
	defer gens[0].Close()
	insts := drain(t, gens[0], 150000)
	// Count record-region loads per run; the Zipf skew should make the
	// run holding key 0 (the hottest) clearly most visited.
	counts := make([]int, len(s.runs))
	for _, in := range insts {
		if in.Op != trace.OpLoad {
			continue
		}
		for i := range s.runs {
			r := &s.runs[i]
			if in.Addr >= r.recs.Base && in.Addr < r.recs.Base+r.recs.Bytes() {
				counts[i]++
			}
		}
	}
	if counts[0] <= counts[len(counts)-1] {
		t.Fatalf("no Zipf skew across runs: %v", counts)
	}
}

// TestLockstepNoDeadlockAcrossThreads regresses the lockstep hazard:
// under lockstep generation (internal/trace) a goroutine parked at a
// batch boundary while holding s.mu would deadlock every sibling
// thread contending for the lock. The store therefore never emits
// while holding it. Pulling many alternating batches from two threads
// of a write-heavy instance deadlocked before that restructuring.
func TestLockstepNoDeadlockAcrossThreads(t *testing.T) {
	cfg := smallConfig()
	cfg.ReadFrac = 0.3 // write-heavy: the insert path takes s.mu often
	s := New(cfg)
	gens := s.Start(2, 1)
	defer func() {
		for _, g := range gens {
			g.Close()
		}
	}()

	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]trace.Inst, 2048)
		// Alternate single-batch pulls so every batch boundary of one
		// thread is followed by a demand on the other.
		for i := 0; i < 300; i++ {
			for _, g := range gens {
				if g.Next(buf) == 0 {
					t.Error("stream ended unexpectedly")
					return
				}
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("deadlock: alternating batch pulls did not complete")
	}
}
