// Package dataserving models the Data Serving workload: a Cassandra-like
// in-memory NoSQL store driven by a YCSB-style client (Section 3.2 of
// the paper: Cassandra 0.7.3 with a 15GB YCSB dataset, Zipfian request
// distribution, 95:5 read/write mix).
//
// The store is a real log-structured design: a skiplist memtable absorbs
// writes; reads probe the memtable, then per-run bloom filters, a sparse
// index, and finally the record payload in one of several sorted runs.
// A garbage-collection quantum periodically marks shared record headers,
// reproducing the parallel-collector sharing the paper observes for the
// Java-based workloads (Section 4.4). All network activity goes through
// the OS model.
package dataserving

import (
	"sync"
	"sync/atomic"

	"cloudsuite/internal/addrspace"
	"cloudsuite/internal/oskern"
	"cloudsuite/internal/rng"
	"cloudsuite/internal/sim/checkpoint"
	"cloudsuite/internal/trace"
	"cloudsuite/internal/workloads"
)

// Config scales the workload.
type Config struct {
	// Records is the number of stored records.
	Records uint64
	// RecordBytes is the payload size (YCSB default: 1KB).
	RecordBytes uint64
	// ReadFrac is the read share of the request mix (YCSB 95:5).
	ReadFrac float64
	// Runs is the number of sorted on-"disk" runs (SSTables).
	Runs int
	// FrameworkInsts is the per-request framework (JVM/Cassandra
	// messaging) instruction budget.
	FrameworkInsts int
}

// DefaultConfig returns the scaled-down default dataset: 128K x 1KB
// records (128MB, >10x the 12MB LLC so the data working set exceeds any
// cache, as in the paper).
func DefaultConfig() Config {
	return Config{
		Records: 128 << 10, RecordBytes: 1024, ReadFrac: 0.95, Runs: 4,
		FrameworkInsts: 5600,
	}
}

type run struct {
	lo, hi uint64 // key range [lo,hi)
	keys   addrspace.Array
	recs   addrspace.Array
	bloom  addrspace.Array
	index  addrspace.Array // sparse index: every 64th key
}

type slNode struct {
	key  uint64
	addr uint64
	next []*slNode
}

// Store is the Data Serving workload instance.
type Store struct {
	cfg  Config
	kern *oskern.Kernel
	heap *addrspace.Heap
	bank *workloads.CodeBank

	fnDispatch  *trace.Func
	fnMemtable  *trace.Func
	fnBloom     *trace.Func
	fnIndex     *trace.Func
	fnRead      *trace.Func
	fnChecksum  *trace.Func
	fnSerialize *trace.Func
	fnInsert    *trace.Func
	fnCommitLog *trace.Func
	fnGC        *trace.Func

	runs    []run
	headers addrspace.Array // shared record headers marked by GC

	mu       sync.RWMutex
	memHead  *slNode
	memLevel int
	memCount int

	logAddr uint64
	logCur  atomic.Uint64
	gcCur   atomic.Uint64
}

// New builds the store and its dataset.
func New(cfg Config) *Store {
	if cfg.Records == 0 {
		cfg = DefaultConfig()
	}
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	s := &Store{cfg: cfg, kern: oskern.New(oskern.DefaultConfig()), heap: addrspace.NewUserHeap()}
	// The JVM + Cassandra stack: a wide framework footprint.
	s.bank = workloads.NewCodeBank(code, "cassandra", 150, 900)
	s.fnDispatch = code.Func("request_dispatch", 700)
	s.fnMemtable = code.Func("memtable_search", 420)
	s.fnBloom = code.Func("bloom_check", 180)
	s.fnIndex = code.Func("index_search", 360)
	s.fnRead = code.Func("record_read", 300)
	s.fnChecksum = code.Func("record_checksum", 150)
	s.fnSerialize = code.Func("serialize_response", 800)
	s.fnInsert = code.Func("memtable_insert", 520)
	s.fnCommitLog = code.Func("commitlog_append", 260)
	s.fnGC = code.Func("gc_mark_quantum", 600)

	per := cfg.Records / uint64(cfg.Runs)
	s.runs = make([]run, cfg.Runs)
	for i := range s.runs {
		s.runs[i] = run{
			lo:    uint64(i) * per,
			hi:    uint64(i+1) * per,
			keys:  addrspace.NewArray(s.heap, per, 8),
			recs:  addrspace.NewArray(s.heap, per, cfg.RecordBytes),
			bloom: addrspace.NewArray(s.heap, (per*10+511)/512, 64),
			index: addrspace.NewArray(s.heap, (per+63)/64, 16),
		}
	}
	s.headers = addrspace.NewArray(s.heap, cfg.Records, 16)
	s.logAddr = s.heap.AllocLines(8 << 20)
	s.memHead = &slNode{next: make([]*slNode, 16), addr: s.heap.AllocLines(160)}
	s.memLevel = 1
	return s
}

// Name implements workloads.Workload.
func (s *Store) Name() string { return "Data Serving" }

// Class implements workloads.Workload.
func (s *Store) Class() workloads.Class { return workloads.ScaleOut }

// DatasetBytes reports the primary data footprint.
func (s *Store) DatasetBytes() uint64 {
	var t uint64
	for i := range s.runs {
		t += s.runs[i].recs.Bytes()
	}
	return t
}

// Start implements workloads.Workload.
func (s *Store) Start(n int, seed int64) []*trace.StepGen {
	gens := make([]*trace.StepGen, n)
	for i := 0; i < n; i++ {
		cfg := workloads.EmitterConfigFor(seed+int64(i)*7919, 0.10)
		gens[i] = trace.NewStepGen(cfg, s.newThread(i, seed+int64(i)))
	}
	return gens
}

// SaveShared serializes the store's shared mutable state: the kernel and
// heap cursors, the log/GC cursors, and the memtable. The skiplist is
// dumped as its level-0 sequence with per-node heights; since every
// higher level is a subsequence of level 0 in the same order, replaying
// the dump through tail pointers rebuilds the exact structure.
func (s *Store) SaveShared(w *checkpoint.Writer) {
	w.Tag("dataserving.shared")
	s.kern.SaveState(w)
	s.heap.SaveState(w)
	w.U64(s.logCur.Load())
	w.U64(s.gcCur.Load())

	s.mu.RLock()
	defer s.mu.RUnlock()
	w.U32(uint32(s.memLevel))
	w.U32(uint32(s.memCount))
	n := 0
	for node := s.memHead.next[0]; node != nil; node = node.next[0] {
		n++
	}
	w.U32(uint32(n))
	for node := s.memHead.next[0]; node != nil; node = node.next[0] {
		w.U64(node.key)
		w.U64(node.addr)
		w.U8(uint8(len(node.next)))
	}
}

// LoadShared restores state written by SaveShared onto a freshly
// constructed store.
func (s *Store) LoadShared(rd *checkpoint.Reader) {
	rd.Expect("dataserving.shared")
	s.kern.LoadState(rd)
	s.heap.LoadState(rd)
	s.logCur.Store(rd.U64())
	s.gcCur.Store(rd.U64())

	s.mu.Lock()
	defer s.mu.Unlock()
	memLevel := int(rd.U32())
	memCount := int(rd.U32())
	n := int(rd.U32())
	if rd.Err() != nil {
		return
	}
	if memLevel < 1 || memLevel > 16 || n > (4096+1) {
		rd.Failf("dataserving: implausible memtable shape (level %d, %d nodes)", memLevel, n)
		return
	}
	s.memHead.next = make([]*slNode, 16)
	var tails [16]*slNode
	for i := range tails {
		tails[i] = s.memHead
	}
	for i := 0; i < n; i++ {
		key, addr := rd.U64(), rd.U64()
		h := int(rd.U8())
		if rd.Err() != nil {
			return
		}
		if h < 1 || h > 16 {
			rd.Failf("dataserving: node height %d out of range", h)
			return
		}
		nn := &slNode{key: key, addr: addr, next: make([]*slNode, h)}
		for l := 0; l < h; l++ {
			tails[l].next[l] = nn
			tails[l] = nn
		}
	}
	s.memLevel = memLevel
	s.memCount = memCount
}

// probeStep is one recorded step of a read-side skiplist traversal.
type probeStep struct {
	addr uint64
	lvl  uint64
	alu  bool
}

// chase is one recorded pointer chase of a write-side traversal.
type chase struct {
	addr uint64
	lvl  uint64
}

// linkPair is one recorded per-level pointer update of an insert.
type linkPair struct {
	newAddr, predAddr uint64
}

// scratch is per-thread recording space for the snapshot-then-emit
// paths, reused across requests so the hot loop does not allocate.
type scratch struct {
	path   []probeStep
	walk   []chase
	linked []linkPair
}

// thread is one server thread's resumable request loop: each Step emits
// one request. All mutable draw state lives in the rng; the kernel-side
// cursors live in conn; everything else is construction-time layout.
type thread struct {
	s       *Store          //simlint:ok checkpointcov shared store, checkpointed via SaveShared
	tid     int             //simlint:ok checkpointcov construction-time identity
	rnd     *rng.Rand       // request mix + insert heights
	zipf    *workloads.Zipf //simlint:ok checkpointcov immutable params; draw state lives in rnd
	sc      scratch         //simlint:ok checkpointcov transient per-request recording space
	conn    *oskern.Conn
	stack   uint64 //simlint:ok checkpointcov construction-time address
	reqBuf  uint64 //simlint:ok checkpointcov construction-time address
	respBuf uint64 //simlint:ok checkpointcov construction-time address
	reqs    uint64
}

// newThread allocates one server thread's connection and buffers. Called
// from Start in thread order, so the allocation sequence is deterministic
// in (n, seed).
func (s *Store) newThread(tid int, seed int64) *thread {
	r := rng.New(seed)
	return &thread{
		s: s, tid: tid, rnd: r,
		zipf:    workloads.NewZipf(r, 0.99, s.cfg.Records),
		conn:    s.kern.OpenConnOn(tid),
		stack:   workloads.StackOf(tid),
		reqBuf:  s.heap.AllocLines(4096),
		respBuf: s.heap.AllocLines(4096),
	}
}

// Step emits one request.
func (t *thread) Step(e *trace.Emitter) bool {
	s := t.s
	key := t.zipf.Next() % s.cfg.Records
	s.kern.Recv(e, t.conn, t.reqBuf, 128)

	e.InFunc(s.fnDispatch, func() {
		workloads.GenericWork(e, 260, t.stack, 3)
	})
	s.bank.Exec(e, key*0x9e3779b9+uint64(t.tid), 22, s.cfg.FrameworkInsts, t.stack, 3)

	if t.rnd.Float64() < s.cfg.ReadFrac {
		s.read(e, key, t.respBuf, t.stack, &t.sc)
		s.kern.Send(e, t.conn, t.respBuf, int(s.cfg.RecordBytes))
	} else {
		s.write(e, key, t.rnd, t.stack, &t.sc)
		s.kern.Send(e, t.conn, t.respBuf, 64)
	}

	t.reqs++
	if t.reqs%48 == 0 {
		s.gcQuantum(e)
	}
	if t.reqs%200 == 0 {
		s.kern.SchedTick(e, t.tid)
	}
	return true
}

// SaveState serializes the thread's resumable state.
func (t *thread) SaveState(w *checkpoint.Writer) {
	w.Tag("dataserving.thread")
	t.rnd.SaveState(w)
	t.conn.SaveState(w)
	w.U64(t.reqs)
}

// LoadState restores state written by SaveState.
func (t *thread) LoadState(rd *checkpoint.Reader) {
	rd.Expect("dataserving.thread")
	t.rnd.LoadState(rd)
	t.conn.LoadState(rd)
	t.reqs = rd.U64()
}

// read emits the full read path for key.
func (s *Store) read(e *trace.Emitter, key uint64, respBuf, stack uint64, sc *scratch) {
	// Memtable probe: pointer-chase down the skiplist. The traversal is
	// recorded under the lock and emitted after releasing it: emitter
	// calls can park the goroutine at a batch boundary (lockstep
	// generation, see internal/trace), so no Go lock may be held across
	// them.
	sc.path = sc.path[:0]
	s.mu.RLock()
	node := s.memHead
	head := node.addr
	for lvl := s.memLevel - 1; lvl >= 0; lvl-- {
		for node.next[lvl] != nil && node.next[lvl].key < key {
			node = node.next[lvl]
			sc.path = append(sc.path, probeStep{addr: node.addr, lvl: uint64(lvl)})
		}
		sc.path = append(sc.path, probeStep{alu: true})
	}
	s.mu.RUnlock()
	e.InFunc(s.fnMemtable, func() {
		v := e.Load(head, 8, trace.NoVal, false)
		for _, st := range sc.path {
			if st.alu {
				v = e.ALU(v, trace.NoVal)
			} else {
				v = e.Load(st.addr+st.lvl*8, 8, v, true)
			}
		}
	})

	// Bloom filters: runs are checked one after another and each check
	// consumes the previous verdict (control-dependent sequence).
	owner := -1
	var bloomDep trace.Val = trace.NoVal
	for i := range s.runs {
		r := &s.runs[i]
		e.InFunc(s.fnBloom, func() {
			h := key*0x9e3779b97f4a7c15 + uint64(i)
			probes := 2
			if key >= r.lo && key < r.hi {
				owner = i
				probes = 4 // all probes pass for the owning run
			}
			for p := 0; p < probes; p++ {
				h ^= h >> 33
				h *= 0xff51afd7ed558ccd
				bloomDep = e.Load(r.bloom.At(h%r.bloom.Len), 8, bloomDep, true)
				bloomDep = e.ALUChain(2, bloomDep)
			}
		})
	}
	if owner < 0 {
		return
	}
	r := &s.runs[owner]
	rel := key - r.lo

	// Sparse index: binary search over the index entries.
	e.InFunc(s.fnIndex, func() {
		lo, hi := uint64(0), r.index.Len
		var v trace.Val = trace.NoVal
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			v = e.Load(r.index.At(mid), 16, v, true)
			v = e.ALUChain(3, v)
			if mid*64 <= rel {
				lo = mid
			} else {
				hi = mid
			}
		}
	})

	// Key scan within the indexed block, then the record payload.
	e.InFunc(s.fnRead, func() {
		base := rel &^ 63
		var v trace.Val = trace.NoVal
		for k := base; k <= rel; k += 8 {
			v = e.Load(r.keys.At(k), 8, v, false)
		}
		hdr := e.Load(s.headers.At(key), 8, v, true)
		e.ALUChain(2, hdr)
	})
	// First touch of the payload: column deserialization is a dependent
	// walk — each column's length field determines where the next one
	// starts — so the cold loads carry a dependence chain instead of
	// exposing memory-level parallelism (the stall behaviour Figure 1
	// attributes to the Java data stores).
	e.InFunc(s.fnChecksum, func() {
		rec := r.recs.At(rel)
		var sum trace.Val = trace.NoVal
		for off := uint64(0); off < s.cfg.RecordBytes; off += 64 {
			sum = e.Load(rec+off, 64, sum, true)
			sum = e.FP(sum, trace.NoVal)
		}
	})
	// Serialization: framework-heavy response construction (the record
	// is cache-resident after the first-touch walk above).
	e.InFunc(s.fnSerialize, func() {
		for off := uint64(0); off < s.cfg.RecordBytes; off += 64 {
			v := e.Load(r.recs.At(rel)+off, 64, trace.NoVal, false)
			e.Store(respBuf+off%4096, 64, v, trace.NoVal)
			e.ALU(v, trace.NoVal)
		}
		workloads.GenericWork(e, 900, stack, 3)
	})
}

// write emits the write path: a skiplist insert plus a commit-log
// append.
func (s *Store) write(e *trace.Emitter, key uint64, rnd *rng.Rand, stack uint64, sc *scratch) {
	// Real skiplist insert. The structural update happens under the
	// lock while recording the touched addresses; the instruction
	// stream is emitted afterwards so no Go lock is held across emitter
	// calls (which can park the goroutine, see the read path).
	sc.walk, sc.linked = sc.walk[:0], sc.linked[:0]
	s.mu.Lock()
	head := s.memHead.addr
	update := make([]*slNode, 16)
	node := s.memHead
	for lvl := s.memLevel - 1; lvl >= 0; lvl-- {
		for node.next[lvl] != nil && node.next[lvl].key < key {
			node = node.next[lvl]
			sc.walk = append(sc.walk, chase{addr: node.addr, lvl: uint64(lvl)})
		}
		update[lvl] = node
	}
	h := 1
	for h < 16 && rnd.Intn(2) == 0 {
		h++
	}
	if h > s.memLevel {
		for l := s.memLevel; l < h; l++ {
			update[l] = s.memHead
		}
		s.memLevel = h
	}
	nn := &slNode{key: key, addr: s.heap.AllocLines(160), next: make([]*slNode, h)}
	for l := 0; l < h; l++ {
		nn.next[l] = update[l].next[l]
		update[l].next[l] = nn
		sc.linked = append(sc.linked, linkPair{newAddr: nn.addr + uint64(l)*8, predAddr: update[l].addr + uint64(l)*8})
	}
	s.memCount++
	// Bound the memtable like a flush would: recycle by dropping
	// (model only; the sorted runs remain the read target).
	if s.memCount > 4096 {
		s.memHead.next = make([]*slNode, 16)
		s.memLevel = 1
		s.memCount = 0
	}
	s.mu.Unlock()

	e.InFunc(s.fnInsert, func() {
		v := e.Load(head, 8, trace.NoVal, false)
		for _, c := range sc.walk {
			v = e.Load(c.addr+c.lvl*8, 8, v, true)
		}
		for _, c := range sc.linked {
			e.Store(c.newAddr, 8, v, trace.NoVal)
			e.Store(c.predAddr, 8, trace.NoVal, trace.NoVal)
		}
	})
	e.InFunc(s.fnCommitLog, func() {
		pos := s.logCur.Add(s.cfg.RecordBytes) % (8 << 20)
		for off := uint64(0); off < s.cfg.RecordBytes; off += 64 {
			e.Store(s.logAddr+(pos+off)%(8<<20), 64, trace.NoVal, trace.NoVal)
		}
		workloads.GenericWork(e, 60, stack, 2)
	})
}

// gcQuantum emits one parallel-collector mark quantum: it walks a chunk
// of the shared header array and writes mark bits, inducing the
// cross-core read-write sharing the paper attributes to the garbage
// collector.
func (s *Store) gcQuantum(e *trace.Emitter) {
	e.InFunc(s.fnGC, func() {
		const chunk = 64
		start := s.gcCur.Add(chunk) % s.cfg.Records
		var v trace.Val = trace.NoVal
		for i := uint64(0); i < chunk; i++ {
			idx := (start + i) % s.cfg.Records
			v = e.Load(s.headers.At(idx), 8, trace.NoVal, false)
			if i%4 == 0 {
				e.Store(s.headers.At(idx), 8, v, trace.NoVal)
			}
		}
	})
}
