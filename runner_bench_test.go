package cloudsuite_test

// Runner benchmarks: the wall-clock effect of the worker pool and the
// measurement memoization cache. Results are bit-identical across all
// of these configurations (per-seed determinism), so the benchmarks
// compare cost only.
//
// On an N-core host the worker-pool pair shows close to min(N, 4)x;
// on a single hardware thread the pool cannot help and the win comes
// entirely from the cache pair, which is host-independent: regenerating
// figures that share their measurement matrix costs one matrix instead
// of one per figure (EXPERIMENTS.md records both).

import (
	"testing"

	"cloudsuite"
)

// runnerBenchOptions uses reduced budgets so one full scale-out matrix
// stays in the seconds range.
func runnerBenchOptions() cloudsuite.Options {
	o := cloudsuite.DefaultOptions()
	o.WarmupInsts = 60_000
	o.MeasureInsts = 20_000
	return o
}

// figure1Cold regenerates Figure 1 over the scale-out suite on a fresh
// runner with the given pool width.
func figure1Cold(b *testing.B, workers int) {
	o := runnerBenchOptions()
	entries := cloudsuite.ScaleOutEntries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := cloudsuite.NewRunner(workers)
		if _, err := r.Figure1(entries, o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerFigure1Workers1 is the serial baseline for the worker
// pool comparison.
func BenchmarkRunnerFigure1Workers1(b *testing.B) { figure1Cold(b, 1) }

// BenchmarkRunnerFigure1Workers4 fans the same matrix out across four
// workers; compare against Workers1 for the pool speedup.
func BenchmarkRunnerFigure1Workers4(b *testing.B) { figure1Cold(b, 4) }

// BenchmarkFiguresIsolatedRunners regenerates Figures 1, 2 and 7 —
// which share one measurement matrix — on isolated runners, the
// pre-memoization cost model: every figure pays for its measurements.
func BenchmarkFiguresIsolatedRunners(b *testing.B) {
	o := runnerBenchOptions()
	entries := cloudsuite.ScaleOutEntries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cloudsuite.NewRunner(4).Figure1(entries, o); err != nil {
			b.Fatal(err)
		}
		if _, err := cloudsuite.NewRunner(4).Figure2(entries, o); err != nil {
			b.Fatal(err)
		}
		if _, err := cloudsuite.NewRunner(4).Figure7(entries, o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFiguresSharedRunner regenerates the same three figures on
// one shared runner: the matrix is simulated once and the other two
// figures aggregate cached measurements. Compare against
// BenchmarkFiguresIsolatedRunners; the ratio approaches 3x on any
// host because cache hits cost microseconds.
func BenchmarkFiguresSharedRunner(b *testing.B) {
	o := runnerBenchOptions()
	entries := cloudsuite.ScaleOutEntries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := cloudsuite.NewRunner(4)
		if _, err := r.Figure1(entries, o); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Figure2(entries, o); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Figure7(entries, o); err != nil {
			b.Fatal(err)
		}
		s := r.Stats()
		b.ReportMetric(float64(s.CacheHits)/float64(s.Requests), "cache-hit-ratio")
	}
}
